package lookupdb

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/modes"
	"repro/internal/sstate"
	"repro/internal/vstest"
)

func clusterDB(t *testing.T, seed int64, n int, enriched bool) (*vstest.Net, []*DB) {
	t.Helper()
	net := vstest.NewNet(t, seed)
	dbs := make([]*DB, 0, n)
	for i := 0; i < n; i++ {
		db, err := Open(net.Fabric, net.Reg, vstest.SiteName(i), vstest.FastOptions(), Config{Enriched: enriched})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		t.Cleanup(db.Close)
		dbs = append(dbs, db)
	}
	waitNormal(t, dbs, 10*time.Second)
	return net, dbs
}

func waitNormal(t *testing.T, dbs []*DB, timeout time.Duration) {
	t.Helper()
	for _, db := range dbs {
		db := db
		vstest.Eventually(t, timeout, fmt.Sprintf("%v in N-mode", db.Process().PID()), func() bool {
			return db.Mode() == modes.Normal
		})
	}
}

func insertRetry(t *testing.T, db *DB, k, v string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if err := db.Insert(k, v); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("insert %q never succeeded", k)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestInsertAndLookupEverywhere(t *testing.T) {
	_, dbs := clusterDB(t, 200, 3, true)
	insertRetry(t, dbs[0], "k1", "v1", 5*time.Second)
	for _, db := range dbs {
		db := db
		vstest.Eventually(t, 3*time.Second, "replication", func() bool {
			v, ok := db.Lookup("k1")
			return ok && v == "v1"
		})
	}
}

func TestLookupWorksInAnyView(t *testing.T) {
	// The paper: R-mode does not exist for this object; look-ups serve
	// even in a singleton partition.
	net, dbs := clusterDB(t, 201, 3, true)
	insertRetry(t, dbs[0], "k", "v", 5*time.Second)
	for _, db := range dbs {
		db := db
		vstest.Eventually(t, 3*time.Second, "replication", func() bool {
			_, ok := db.Lookup("k")
			return ok
		})
	}
	net.Fabric.SetPartitions([]string{"a"}, []string{"b", "c"})
	vstest.Eventually(t, 10*time.Second, "a alone", func() bool {
		return dbs[0].Process().CurrentView().Size() == 1
	})
	if v, ok := dbs[0].Lookup("k"); !ok || v != "v" {
		t.Fatalf("lookup in singleton partition = %q, %v", v, ok)
	}
}

func TestStateMergingAfterPartition(t *testing.T) {
	// The add-only union: both sides insert during the partition; after
	// the merge everyone holds everything. This is the paper's state
	// merging problem, solved by the union.
	for _, enriched := range []bool{true, false} {
		enriched := enriched
		t.Run(fmt.Sprintf("enriched=%v", enriched), func(t *testing.T) {
			net, dbs := clusterDB(t, 202, 4, enriched)
			insertRetry(t, dbs[0], "base", "0", 5*time.Second)

			net.Fabric.SetPartitions([]string{"a", "b"}, []string{"c", "d"})
			vstest.Eventually(t, 10*time.Second, "left side settles", func() bool {
				return dbs[0].Process().CurrentView().Size() == 2 && dbs[0].Mode() == modes.Normal
			})
			vstest.Eventually(t, 10*time.Second, "right side settles", func() bool {
				return dbs[2].Process().CurrentView().Size() == 2 && dbs[2].Mode() == modes.Normal
			})

			insertRetry(t, dbs[0], "left-key", "L", 5*time.Second)
			insertRetry(t, dbs[2], "right-key", "R", 5*time.Second)

			net.Fabric.Heal()
			vstest.Eventually(t, 15*time.Second, "merged view", func() bool {
				return dbs[0].Process().CurrentView().Size() == 4
			})
			waitNormal(t, dbs, 15*time.Second)
			for _, db := range dbs {
				db := db
				vstest.Eventually(t, 5*time.Second, "union complete", func() bool {
					l, okL := db.Lookup("left-key")
					r, okR := db.Lookup("right-key")
					b, okB := db.Lookup("base")
					return okL && okR && okB && l == "L" && r == "R" && b == "0"
				})
			}

			// The classifier saw a merging-flavored problem on some
			// member after the heal.
			mergings := 0
			for _, db := range dbs {
				st := db.Stats()
				mergings += st.Classifications[sstate.Merging] + st.Classifications[sstate.TransferMerging]
			}
			if enriched && mergings == 0 {
				t.Error("no merging classification recorded after heal")
			}
		})
	}
}

func TestEnrichedDumpsLessThanFlat(t *testing.T) {
	// Under enriched views only one representative per subview dumps;
	// under flat views everyone does. After the same schedule the flat
	// cluster must have sent more dumps.
	run := func(enriched bool) int {
		net, dbs := clusterDB(t, 203, 4, enriched)
		insertRetry(t, dbs[0], "x", "1", 5*time.Second)
		net.Fabric.SetPartitions([]string{"a", "b"}, []string{"c", "d"})
		vstest.Eventually(t, 10*time.Second, "split", func() bool {
			return dbs[0].Process().CurrentView().Size() == 2 &&
				dbs[2].Process().CurrentView().Size() == 2
		})
		net.Fabric.Heal()
		vstest.Eventually(t, 15*time.Second, "merged", func() bool {
			return dbs[0].Process().CurrentView().Size() == 4
		})
		waitNormal(t, dbs, 15*time.Second)
		total := 0
		for _, db := range dbs {
			total += db.Stats().DumpsSent
		}
		return total
	}
	flat := run(false)
	enr := run(true)
	if enr >= flat {
		t.Errorf("enriched dumps (%d) not fewer than flat (%d)", enr, flat)
	}
}

func TestResponsibilityPartitionsKeyspace(t *testing.T) {
	// The invariant S-mode exists to protect: every key has exactly one
	// responsible member, and all members agree on the assignment.
	_, dbs := clusterDB(t, 204, 3, true)
	keys := make([]string, 50)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	vstest.Eventually(t, 5*time.Second, "assignment agreement", func() bool {
		for _, k := range keys {
			owner0, ok := dbs[0].ResponsibleFor(k)
			if !ok {
				return false
			}
			for _, db := range dbs[1:] {
				o, ok := db.ResponsibleFor(k)
				if !ok || o != owner0 {
					return false
				}
			}
		}
		return true
	})
	// Each key is in exactly one member's share.
	for _, k := range keys {
		owners := 0
		for _, db := range dbs {
			if db.MyShare(k) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("key %q has %d owners", k, owners)
		}
	}
}

func TestScanMineCoversExactlyOwnShare(t *testing.T) {
	_, dbs := clusterDB(t, 205, 3, true)
	for i := 0; i < 30; i++ {
		insertRetry(t, dbs[i%3], fmt.Sprintf("k%d", i), "v", 5*time.Second)
	}
	vstest.Eventually(t, 5*time.Second, "full replication", func() bool {
		for _, db := range dbs {
			if db.Len() != 30 {
				return false
			}
		}
		return true
	})
	// The union of all ScanMine slices is the whole database, without
	// duplicates — the parallel query searches everything exactly once.
	seen := make(map[string]int)
	for _, db := range dbs {
		for _, k := range db.ScanMine() {
			seen[k]++
		}
	}
	if len(seen) != 30 {
		t.Fatalf("parallel scan covered %d keys, want 30", len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("key %q scanned %d times", k, n)
		}
	}
}

func TestInsertRejectedWhileSettling(t *testing.T) {
	net := vstest.NewNet(t, 206)
	db, err := Open(net.Fabric, net.Reg, "a", vstest.FastOptions(), Config{Enriched: true})
	if err != nil {
		t.Fatal(err)
	}
	// Do not wait for N: immediately after open the machine may still be
	// settling; Insert must fail cleanly rather than hang.
	err = db.Insert("k", "v")
	if err != nil && err != ErrNotServing {
		t.Fatalf("Insert while settling: %v", err)
	}
	db.Close()
	if err := db.Insert("k", "v"); err != ErrClosed {
		t.Fatalf("Insert after close: %v", err)
	}
}

func TestConcurrentSameKeyInsertsConverge(t *testing.T) {
	// Concurrent inserts of one key are causally unordered; the
	// order-insensitive merge rule must still make all replicas agree.
	_, dbs := clusterDB(t, 208, 3, true)
	// Track which inserts were actually accepted (a transient view
	// change makes Insert return ErrNotServing; those values are simply
	// never multicast and must not count toward the expected winner).
	accepted := make(map[string][]string)
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("contended-%d", i%4)
		for j, db := range dbs {
			v := fmt.Sprintf("%c-%02d", 'a'+j, i)
			if err := db.Insert(k, v); err == nil {
				accepted[k] = append(accepted[k], v)
			}
		}
	}
	// Seed any key whose inserts all failed, so agreement is reachable.
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("contended-%d", i)
		if len(accepted[k]) == 0 {
			insertRetry(t, dbs[0], k, "a-seed", 5*time.Second)
			accepted[k] = append(accepted[k], "a-seed")
		}
	}
	vstest.Eventually(t, 5*time.Second, "replica agreement", func() bool {
		for i := 0; i < 4; i++ {
			k := fmt.Sprintf("contended-%d", i)
			ref, ok := dbs[0].Lookup(k)
			if !ok {
				return false
			}
			for _, db := range dbs[1:] {
				v, ok := db.Lookup(k)
				if !ok || v != ref {
					return false
				}
			}
		}
		return true
	})
	// And each winner is the lattice maximum of the accepted values.
	for k, vals := range accepted {
		max := ""
		for _, v := range vals {
			if v > max {
				max = v
			}
		}
		if got, _ := dbs[0].Lookup(k); got != max {
			t.Fatalf("%s winner = %q, want the lexicographic max %q", k, got, max)
		}
	}
}

func TestSameKeyDivergenceAcrossPartitionConverges(t *testing.T) {
	// Both sides write the same key during a partition; after the merge
	// every replica resolves to the same value.
	net, dbs := clusterDB(t, 209, 4, true)
	insertRetry(t, dbs[0], "shared", "initial", 5*time.Second)
	net.Fabric.SetPartitions([]string{"a", "b"}, []string{"c", "d"})
	vstest.Eventually(t, 10*time.Second, "split", func() bool {
		return dbs[0].Process().CurrentView().Size() == 2 &&
			dbs[2].Process().CurrentView().Size() == 2
	})
	waitNormal(t, dbs, 15*time.Second)
	insertRetry(t, dbs[0], "shared", "left-wins?", 5*time.Second)
	insertRetry(t, dbs[2], "shared", "right-wins?", 5*time.Second)

	net.Fabric.Heal()
	vstest.Eventually(t, 15*time.Second, "merged", func() bool {
		return dbs[0].Process().CurrentView().Size() == 4
	})
	waitNormal(t, dbs, 15*time.Second)
	vstest.Eventually(t, 5*time.Second, "value agreement", func() bool {
		ref, ok := dbs[0].Lookup("shared")
		if !ok {
			return false
		}
		for _, db := range dbs[1:] {
			if v, ok := db.Lookup("shared"); !ok || v != ref {
				return false
			}
		}
		return true
	})
	if v, _ := dbs[0].Lookup("shared"); v != "right-wins?" {
		t.Fatalf("merged value = %q, want lattice max right-wins?", v)
	}
}

func TestJoinerReceivesFullDatabase(t *testing.T) {
	net, dbs := clusterDB(t, 207, 3, true)
	for i := 0; i < 10; i++ {
		insertRetry(t, dbs[0], fmt.Sprintf("pre-%d", i), "v", 5*time.Second)
	}
	joiner, err := Open(net.Fabric, net.Reg, "d", vstest.FastOptions(), Config{Enriched: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(joiner.Close)
	vstest.Eventually(t, 15*time.Second, "joiner catches up", func() bool {
		return joiner.Mode() == modes.Normal && joiner.Len() == 10
	})
}
