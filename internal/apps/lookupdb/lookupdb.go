// Package lookupdb implements the paper's second group-object example
// (Section 3): a fully replicated database with a look-up query
// interface, where queries are performed in parallel by the group
// members, each responsible for a subset of the database.
//
// The mode mapping of the example, straight from the paper: the only
// external operation (look-up) can be performed in any view, so R-mode
// does not exist; any view change switches the process to S-mode to
// redefine the division of responsibility — an inconsistency in that
// assignment "could result in some portion of the database not being
// searched at all or being searched multiple times".
//
// The shared-state problems of this object:
//
//   - any view change → recompute the responsibility assignment
//     (deterministic from the membership, so purely local);
//   - partition merge → *state merging*: concurrent partitions kept
//     inserting independently; reconciliation is the add-only union.
//     Under enriched views only one representative per subview dumps its
//     cluster's data (members of a subview provably hold the same set);
//     under flat views every member must dump — another concrete cost of
//     the missing structure.
package lookupdb

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/modes"
	"repro/internal/transport"
	"repro/internal/sstate"
	"repro/internal/stable"
)

// Errors returned by the DB API.
var (
	// ErrNotServing is returned by Insert outside N-mode.
	ErrNotServing = errors.New("lookupdb: settling, try again")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("lookupdb: closed")
)

// Config parametrizes a replica.
type Config struct {
	// Enriched selects §6.2 local classification and per-subview dumps.
	Enriched bool
}

// DB is one replica of the look-up database.
type DB struct {
	p   *core.Process
	cfg Config

	mu       sync.Mutex
	machine  *modes.Machine
	data     map[string]string
	settling *settle
	closed   bool

	statsMu sync.Mutex
	stats   DBStats

	done chan struct{}
}

// DBStats counts reconciliation activity for experiments.
type DBStats struct {
	Classifications map[sstate.Kind]int
	DumpsSent       int
	DumpBytes       int
	Reconciles      int
}

type settle struct {
	view core.EView
	// want is the set of senders whose dump this round still needs:
	// one representative per subview (enriched) or everyone (flat).
	want ids.PIDSet
}

type dbMsg struct {
	Type string            `json:"t"` // "ins", "dump"
	Key  string            `json:"k,omitempty"`
	Val  string            `json:"v,omitempty"`
	Data map[string]string `json:"data,omitempty"`
	From ids.PID           `json:"from"`
}

var dbMagic = []byte("\x01lookupdb1\x00")

func encodeMsg(m dbMsg) []byte {
	body, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("lookupdb: encode: %v", err)) // unreachable
	}
	return append(append([]byte{}, dbMagic...), body...)
}

func decodeMsg(payload []byte) (dbMsg, bool) {
	if !bytes.HasPrefix(payload, dbMagic) {
		return dbMsg{}, false
	}
	var m dbMsg
	if err := json.Unmarshal(payload[len(dbMagic):], &m); err != nil {
		return dbMsg{}, false
	}
	return m, true
}

// Open starts a replica.
func Open(fabric transport.Transport, reg *stable.Registry, site string, coreOpts core.Options, cfg Config) (*DB, error) {
	coreOpts.Enriched = cfg.Enriched
	p, err := core.Start(fabric, reg, site, coreOpts)
	if err != nil {
		return nil, fmt.Errorf("lookupdb: %w", err)
	}
	db := &DB{
		p:    p,
		cfg:  cfg,
		data: make(map[string]string),
		done: make(chan struct{}),
	}
	db.stats.Classifications = make(map[sstate.Kind]int)
	go db.run()
	return db, nil
}

// Process exposes the underlying process.
func (db *DB) Process() *core.Process { return db.p }

// Mode returns the current Figure-1 mode (only N and S exist for this
// object).
func (db *DB) Mode() modes.Mode {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.machine == nil {
		return modes.Settling
	}
	return db.machine.Mode()
}

// Stats returns a snapshot of the counters.
func (db *DB) Stats() DBStats {
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	out := db.stats
	out.Classifications = make(map[sstate.Kind]int, len(db.stats.Classifications))
	for k, v := range db.stats.Classifications {
		out.Classifications[k] = v
	}
	return out
}

// Insert upserts a key (add-only data model: keys are never deleted, so
// partition-merge reconciliation is the set union). Requires N-mode.
func (db *DB) Insert(key, value string) error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if db.machine == nil || db.machine.Mode() != modes.Normal {
		db.mu.Unlock()
		return ErrNotServing
	}
	db.mu.Unlock()
	return db.p.Multicast(encodeMsg(dbMsg{Type: "ins", Key: key, Val: value, From: db.p.PID()}))
}

// Lookup performs the external operation: a local search of the replica.
// Per the paper it is available in any view.
func (db *DB) Lookup(key string) (string, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	v, ok := db.data[key]
	return v, ok
}

// Len returns the number of stored keys.
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.data)
}

// Keys returns all keys (unordered).
func (db *DB) Keys() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.data))
	for k := range db.data {
		out = append(out, k)
	}
	return out
}

// ResponsibleFor returns the view member responsible for searching key
// under the current division of responsibility: the assignment the
// S-mode transition exists to keep consistent. It is a pure function of
// the current view membership, so all members agree on it as soon as
// they agree on the view.
func (db *DB) ResponsibleFor(key string) (ids.PID, bool) {
	members := db.p.CurrentView().Members
	if len(members) == 0 {
		return ids.PID{}, false
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return members[int(h.Sum32())%len(members)], true
}

// MyShare reports whether this replica is responsible for key.
func (db *DB) MyShare(key string) bool {
	p, ok := db.ResponsibleFor(key)
	return ok && p == db.p.PID()
}

// ScanMine returns the keys this replica is responsible for — its slice
// of a parallel query.
func (db *DB) ScanMine() []string {
	db.mu.Lock()
	keys := make([]string, 0, len(db.data))
	for k := range db.data {
		keys = append(keys, k)
	}
	db.mu.Unlock()
	var out []string
	for _, k := range keys {
		if db.MyShare(k) {
			out = append(out, k)
		}
	}
	return out
}

// Close leaves the group.
func (db *DB) Close() {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return
	}
	db.closed = true
	db.mu.Unlock()
	db.p.Leave()
	<-db.done
}

// run consumes the event stream.
func (db *DB) run() {
	defer close(db.done)
	for ev := range db.p.Events() {
		switch e := ev.(type) {
		case core.ViewEvent:
			db.onView(e.EView)
		case core.EChangeEvent:
			// Structure merges do not affect this object's mode function
			// (AlwaysSettle); they only feed the next classification.
			// The sequencer chains the subview merge behind the sv-set
			// merge here.
			db.maybeMergeStructure(e.EView)
		case core.MsgEvent:
			db.onMsg(e)
		}
	}
}

func (db *DB) onView(v core.EView) {
	db.mu.Lock()
	if db.machine == nil {
		db.machine = modes.NewMachine(modes.AlwaysSettle(), v)
	} else {
		db.machine.OnView(v)
	}

	s := &settle{view: v, want: make(ids.PIDSet)}
	db.settling = s

	everyClusterServed := func(ids.PIDSet) bool { return true }
	if db.cfg.Enriched {
		class := sstate.ClassifyEnriched(v, everyClusterServed)
		db.countClassification(class.Kind)
		// One representative (smallest member) per subview dumps; a
		// single-subview view (pure shrink) needs no dumps at all.
		if v.Structure.NumSubviews() > 1 {
			for _, sv := range v.Structure.Subviews() {
				if rep, ok := v.Structure.SubviewMembers(sv).Min(); ok {
					s.want.Add(rep)
				}
			}
		}
	} else {
		// Flat views: no way to tell who diverged — everyone dumps.
		for _, m := range v.Members {
			s.want.Add(m)
		}
	}
	mustDump := s.want.Has(db.p.PID())
	var dump map[string]string
	if mustDump {
		dump = make(map[string]string, len(db.data))
		for k, val := range db.data {
			dump[k] = val
		}
	}
	db.mu.Unlock()

	if mustDump {
		payload := encodeMsg(dbMsg{Type: "dump", Data: dump, From: db.p.PID()})
		db.statsMu.Lock()
		db.stats.DumpsSent++
		db.stats.DumpBytes += len(payload)
		db.statsMu.Unlock()
		_ = db.p.Multicast(payload)
	}
	db.advance()
}

func (db *DB) countClassification(k sstate.Kind) {
	db.statsMu.Lock()
	db.stats.Classifications[k]++
	db.statsMu.Unlock()
}

func (db *DB) onMsg(m core.MsgEvent) {
	msg, ok := decodeMsg(m.Payload)
	if !ok {
		return
	}
	switch msg.Type {
	case "ins":
		db.mu.Lock()
		db.upsertLocked(msg.Key, msg.Val)
		db.mu.Unlock()
	case "dump":
		db.mu.Lock()
		if db.settling != nil && m.View == db.settling.view.ID {
			for k, v := range msg.Data {
				db.upsertLocked(k, v)
			}
			db.settling.want.Remove(msg.From)
		}
		db.mu.Unlock()
		db.advance()
	}
}

// upsertLocked merges one entry. Causal multicast does not totally order
// concurrent inserts, and dumps from concurrent partitions arrive in
// arbitrary relative order, so the merge must be order-insensitive:
// conflicting values for one key resolve deterministically to the
// lexicographically largest, making the replicated map a join
// semilattice (convergence regardless of delivery interleaving).
func (db *DB) upsertLocked(k, v string) {
	if old, ok := db.data[k]; ok && old >= v {
		return
	}
	db.data[k] = v
}

// advance reconciles once every awaited dump arrived: the union is
// complete, the responsibility assignment is implied by the view, so the
// internal operation is done.
func (db *DB) advance() {
	db.mu.Lock()
	s := db.settling
	if s == nil || db.machine == nil || db.machine.Mode() != modes.Settling || len(s.want) > 0 {
		db.mu.Unlock()
		return
	}
	view := s.view
	_, err := db.machine.Reconcile()
	if err == nil {
		db.settling = nil
	}
	db.mu.Unlock()

	if err == nil {
		db.statsMu.Lock()
		db.stats.Reconciles++
		db.statsMu.Unlock()
	}
	// The sequencer merges the structure back together for the next
	// classification round (§6.2 methodology); no one waits on it.
	db.maybeMergeStructure(view)
}

// maybeMergeStructure lets the view sequencer fold a reconciled view's
// structure back into a single subview: first the sv-sets, then (driven
// again by the resulting e-change event) the subviews.
func (db *DB) maybeMergeStructure(v core.EView) {
	if !db.cfg.Enriched {
		return
	}
	if min, ok := v.Comp().Min(); !ok || min != db.p.PID() {
		return
	}
	if sss := v.Structure.SVSets(); len(sss) > 1 {
		_ = db.p.SVSetMerge(sss...)
		return
	}
	if svs := v.Structure.Subviews(); len(svs) > 1 {
		_ = db.p.SubviewMerge(svs...)
	}
}
