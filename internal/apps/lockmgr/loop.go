package lockmgr

import (
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/modes"
	"repro/internal/sstate"
)

func (m *Manager) run() {
	defer func() {
		m.mu.Lock()
		for _, ch := range m.waiters {
			ch <- ErrClosed
		}
		m.waiters = make(map[string]chan error)
		m.mu.Unlock()
		close(m.done)
	}()
	for ev := range m.p.Events() {
		switch e := ev.(type) {
		case core.ViewEvent:
			m.onView(e.EView)
		case core.EChangeEvent:
			m.onEChange(e)
		case core.MsgEvent:
			m.onMsg(e)
		}
	}
}

// modeFunc mirrors repfile's quorum functions, with the lock-specific
// twist that both external operations need the majority.
func (m *Manager) newMachine(v core.EView) *modes.Machine {
	fn := modes.QuorumFlat(m.cfg.RW)
	if m.cfg.Enriched {
		fn = modes.QuorumEnriched(m.p.PID(), m.cfg.RW)
	}
	return modes.NewMachine(fn, v)
}

func (m *Manager) onView(v core.EView) {
	m.mu.Lock()
	prevMode := modes.Settling
	prevView := ids.ViewID{}
	if m.machine != nil {
		prevMode = m.machine.Mode()
		prevView = m.machine.View().ID
	}
	if m.machine == nil {
		m.machine = m.newMachine(v)
	} else {
		m.machine.OnView(v)
	}
	for op, ch := range m.waiters {
		ch <- ErrTimeout
		delete(m.waiters, op)
	}
	m.settling = nil
	// A holder that is not in the new view lost the lock: this is
	// locally decidable from the composition, and every member of the
	// view decides it identically (the isolated holder itself observes
	// R-mode on its side and knows the lock is no longer protected).
	if !m.holder.IsZero() && !v.Comp().Has(m.holder) {
		m.holder = ids.PID{}
		m.seq++
		m.statsMu.Lock()
		m.stats.StaleFrees++
		m.statsMu.Unlock()
	}
	m.stView = v.ID
	m.stTable = map[ids.PID]lockInfo{m.p.PID(): {Holder: m.holder, Seq: m.seq}}
	if m.machine.Mode() == modes.Settling {
		s := &settle{view: v}
		m.settling = s
		if m.cfg.Enriched {
			class := sstate.ClassifyEnriched(v, func(c ids.PIDSet) bool { return m.cfg.RW.CanWrite(c) })
			s.class = &class
			m.countClassification(class.Kind)
		} else {
			s.proto = sstate.NewProtocol(v)
		}
	}
	holder, seq := m.holder, m.seq
	m.mu.Unlock()

	// Every member announces its lock state at every view change,
	// whatever its mode, so settlers can adopt the freshest state and
	// the sequencer knows when to merge the structure.
	_ = m.p.Multicast(encodeMsg(lockMsg{Type: "state", From: m.p.PID(), Holder: holder, Seq: seq}))
	if !m.cfg.Enriched {
		if payload, err := sstate.Announcement(m.p.PID(), prevView, prevMode); err == nil {
			_ = m.p.Multicast(payload)
		}
	}
	m.advance()
}

func (m *Manager) isManagerOf(v core.EView) bool {
	min, ok := v.Comp().Min()
	return ok && min == m.p.PID()
}

func (m *Manager) countClassification(k sstate.Kind) {
	m.statsMu.Lock()
	m.stats.Classifications[k]++
	m.statsMu.Unlock()
}

// onEChange tracks structure changes but does not re-drive the mode
// machine: e-view changes only grow the structure (merges), so they can
// never degrade a capability — while re-evaluating the quorum mode
// function mid-merge would spuriously Reconfigure an already-reconciled
// member back into S with no settle round open.
func (m *Manager) onEChange(e core.EChangeEvent) {
	m.mu.Lock()
	if m.settling != nil {
		m.settling.view = e.EView
	}
	m.mu.Unlock()
	m.advance()
}

func (m *Manager) onMsg(ev core.MsgEvent) {
	if sstate.IsInfo(ev.Payload) {
		m.mu.Lock()
		s := m.settling
		if s != nil && s.proto != nil && ev.View == s.view.ID {
			done, _ := s.proto.Offer(ev)
			if done && s.class == nil {
				if class, err := s.proto.Classify(); err == nil {
					s.class = &class
					m.countClassification(class.Kind)
				}
			}
		}
		m.mu.Unlock()
		m.advance()
		return
	}
	msg, ok := decodeMsg(ev.Payload)
	if !ok {
		return
	}
	switch msg.Type {
	case "acq":
		m.onAcquire(msg)
	case "rel":
		m.onRelease(msg)
	case "grant", "free":
		m.onGrantOrFree(msg)
	case "busy":
		m.signal(msg.Op, ErrBusy)
	case "state":
		m.mu.Lock()
		if ev.View == m.stView {
			m.stTable[msg.From] = lockInfo{Holder: msg.Holder, Seq: msg.Seq}
		}
		m.mu.Unlock()
		m.advance()
	}
}

// onAcquire runs at the manager.
func (m *Manager) onAcquire(msg lockMsg) {
	m.mu.Lock()
	view := m.p.CurrentView()
	if !m.isManagerOf(view) || m.machine == nil || m.machine.Mode() != modes.Normal {
		m.mu.Unlock()
		return // requester times out
	}
	if m.holder == msg.From {
		// Idempotent re-grant: the previous grant may have been lost in
		// a view change after the manager assigned it; the requester is
		// retrying and already holds the lock.
		seq := m.seq
		m.mu.Unlock()
		_ = m.p.Multicast(encodeMsg(lockMsg{Type: "grant", Op: msg.Op, From: m.p.PID(), Holder: msg.From, Seq: seq}))
		return
	}
	if !m.holder.IsZero() {
		holder := m.holder
		m.mu.Unlock()
		_ = m.p.Unicast(msg.From, encodeMsg(lockMsg{Type: "busy", Op: msg.Op, From: m.p.PID(), Holder: holder}))
		return
	}
	// Assign eagerly so a second acquire arriving before the grant
	// round-trips sees the lock taken (the manager serializes grants).
	m.seq++
	m.holder = msg.From
	seq := m.seq
	m.statsMu.Lock()
	m.stats.Grants++
	m.statsMu.Unlock()
	m.mu.Unlock()
	_ = m.p.Multicast(encodeMsg(lockMsg{Type: "grant", Op: msg.Op, From: m.p.PID(), Holder: msg.From, Seq: seq}))
}

// onRelease runs at the manager.
func (m *Manager) onRelease(msg lockMsg) {
	m.mu.Lock()
	view := m.p.CurrentView()
	if !m.isManagerOf(view) || m.machine == nil || m.machine.Mode() != modes.Normal {
		m.mu.Unlock()
		return
	}
	if m.holder != msg.From {
		m.mu.Unlock()
		m.signalRemote(msg, ErrNotHolder)
		return
	}
	m.seq++
	m.holder = ids.PID{}
	seq := m.seq
	m.statsMu.Lock()
	m.stats.Releases++
	m.statsMu.Unlock()
	m.mu.Unlock()
	_ = m.p.Multicast(encodeMsg(lockMsg{Type: "free", Op: msg.Op, From: m.p.PID(), Seq: seq}))
}

func (m *Manager) signalRemote(msg lockMsg, err error) {
	if msg.From == m.p.PID() {
		m.signal(msg.Op, err)
		return
	}
	// Remote requesters simply time out on protocol errors; the local
	// case matters for fast feedback.
}

// onGrantOrFree applies a sequenced lock-state change at every member.
// The manager itself applied (and counted) the change eagerly; everyone
// else applies it here.
func (m *Manager) onGrantOrFree(msg lockMsg) {
	m.mu.Lock()
	if msg.Seq > m.seq {
		m.seq = msg.Seq
		if msg.Type == "grant" {
			m.holder = msg.Holder
		} else {
			m.holder = ids.PID{}
		}
		if msg.From != m.p.PID() {
			m.statsMu.Lock()
			if msg.Type == "grant" {
				m.stats.Grants++
			} else {
				m.stats.Releases++
			}
			m.statsMu.Unlock()
		}
	}
	ch, ok := m.waiters[msg.Op]
	if ok {
		delete(m.waiters, msg.Op)
	}
	m.mu.Unlock()
	if ok {
		ch <- nil
	}
}

func (m *Manager) signal(op string, err error) {
	m.mu.Lock()
	ch, ok := m.waiters[op]
	if ok {
		delete(m.waiters, op)
	}
	m.mu.Unlock()
	if ok {
		ch <- err
	}
}

// advance drives both the settlers' adoption step and the sequencer's
// structure-merge duty; safe to call from any event.
func (m *Manager) advance() {
	m.mu.Lock()
	if m.machine == nil {
		m.mu.Unlock()
		return
	}
	view := m.p.CurrentView()
	comp := view.Comp()
	allAnnounced := m.stView == view.ID && len(m.stTable) >= len(comp)

	reconciled := false
	if s := m.settling; s != nil && m.machine.Mode() == modes.Settling && allAnnounced && s.class != nil {
		// Adopt the freshest lock state among the members.
		best := lockInfo{}
		for _, info := range m.stTable {
			if info.Seq > best.Seq {
				best = info
			}
		}
		if best.Seq > m.seq {
			m.seq = best.Seq
			m.holder = best.Holder
			// Announced states never reference a departed holder: every
			// member freed such a lock at view installation, before
			// announcing.
		}
		// With every member's lock state adopted, reconciliation is
		// complete; the machine's own gate (capability != R) is the only
		// remaining condition. Waiting for the structure merges to
		// round-trip is unnecessary — and would strand the settler if a
		// merge stalls behind another view change.
		if _, err := m.machine.Reconcile(); err == nil {
			m.settling = nil
			reconciled = true
		}
	}

	// Sequencer duty (enriched, any mode): merge the structure once all
	// members of the view have announced.
	var (
		svsets   []ids.SVSetID
		subviews []ids.SubviewID
	)
	act := ""
	if m.cfg.Enriched && allAnnounced {
		if min, ok := comp.Min(); ok && min == m.p.PID() {
			if view.Structure.NumSVSets() > 1 {
				act, svsets = "svsets", view.Structure.SVSets()
			} else if view.Structure.NumSubviews() > 1 {
				act, subviews = "subviews", view.Structure.Subviews()
			}
		}
	}
	m.mu.Unlock()

	if reconciled {
		m.statsMu.Lock()
		m.stats.Reconciles++
		m.statsMu.Unlock()
	}
	switch act {
	case "svsets":
		_ = m.p.SVSetMerge(svsets...)
	case "subviews":
		_ = m.p.SubviewMerge(subviews...)
	}
}
