// Package lockmgr implements the Section-6.2 example: a group object
// managing a mutually-exclusive write lock that can only be used in a
// view containing a majority of processes. The shared global state is
// the identity of the lock manager and of the current lock holder.
//
// Mode mapping: a majority view is required for both external operations
// (acquire, release), so a minority view is R-mode with an empty
// external subset; a majority view whose members are not reconciled
// about the holder is S-mode; otherwise N.
//
// The lock manager is the view's smallest member. A process acquires by
// asking the manager, which multicasts the grant; every member tracks
// (holder, grant sequence). On a view change to S-mode, members exchange
// their (holder, seq) pairs, adopt the highest, release the lock if its
// holder left the majority (a holder isolated in a minority partition
// observes R-mode and knows its lock is no longer protected), and
// reconcile. Two concurrent majorities cannot exist, so state merging
// never arises — the paper's observation about the primary-partition
// flavor of quorum objects.
package lockmgr

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/modes"
	"repro/internal/quorum"
	"repro/internal/transport"
	"repro/internal/sstate"
	"repro/internal/stable"
)

// Errors returned by the Manager API.
var (
	// ErrNotAvailable is returned outside N-mode.
	ErrNotAvailable = errors.New("lockmgr: no majority / not reconciled")
	// ErrBusy is returned by TryAcquire when another process holds the
	// lock.
	ErrBusy = errors.New("lockmgr: lock is held")
	// ErrNotHolder is returned by Release when this process does not
	// hold the lock.
	ErrNotHolder = errors.New("lockmgr: not the holder")
	// ErrTimeout is returned when the manager's answer did not arrive in
	// time (e.g. a view change); retry.
	ErrTimeout = errors.New("lockmgr: operation timed out")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("lockmgr: closed")
)

// Config parametrizes a member.
type Config struct {
	// RW is the majority quorum system shared by the group.
	RW quorum.RW
	// Enriched selects §6.2 local classification.
	Enriched bool
	// OpTimeout bounds TryAcquire/Release round trips (default 2s).
	OpTimeout time.Duration
}

// Manager is one member of the lock group.
type Manager struct {
	p   *core.Process
	cfg Config

	mu       sync.Mutex
	machine  *modes.Machine
	holder   ids.PID // zero when free
	seq      uint64  // grant/release sequence, monotone per majority era
	waiters  map[string]chan error
	nextOp   uint64
	settling *settle
	closed   bool
	// stView / stTable hold the per-view lock-state announcements from
	// every member (any mode), feeding both the settlers' adoption step
	// and the sequencer's merge duty.
	stView  ids.ViewID
	stTable map[ids.PID]lockInfo

	statsMu sync.Mutex
	stats   Stats

	done chan struct{}
}

// Stats counts activity for experiments.
type Stats struct {
	Classifications map[sstate.Kind]int
	Grants          uint64
	Releases        uint64
	StaleFrees      uint64
	Reconciles      uint64
}

type settle struct {
	view  core.EView
	proto *sstate.Protocol
	class *sstate.Classification
}

type lockInfo struct {
	Holder ids.PID `json:"holder"`
	Seq    uint64  `json:"seq"`
}

type lockMsg struct {
	Type   string  `json:"t"` // "acq", "rel", "grant", "free", "busy", "state"
	Op     string  `json:"op,omitempty"`
	From   ids.PID `json:"from"`
	Holder ids.PID `json:"holder,omitempty"`
	Seq    uint64  `json:"seq,omitempty"`
}

var lockMagic = []byte("\x01lockmgr1\x00")

func encodeMsg(m lockMsg) []byte {
	body, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("lockmgr: encode: %v", err)) // unreachable
	}
	return append(append([]byte{}, lockMagic...), body...)
}

func decodeMsg(payload []byte) (lockMsg, bool) {
	if !bytes.HasPrefix(payload, lockMagic) {
		return lockMsg{}, false
	}
	var m lockMsg
	if err := json.Unmarshal(payload[len(lockMagic):], &m); err != nil {
		return lockMsg{}, false
	}
	return m, true
}

// Open starts a member.
func Open(fabric transport.Transport, reg *stable.Registry, site string, coreOpts core.Options, cfg Config) (*Manager, error) {
	coreOpts.Enriched = cfg.Enriched
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 2 * time.Second
	}
	p, err := core.Start(fabric, reg, site, coreOpts)
	if err != nil {
		return nil, fmt.Errorf("lockmgr: %w", err)
	}
	m := &Manager{
		p:       p,
		cfg:     cfg,
		waiters: make(map[string]chan error),
		done:    make(chan struct{}),
	}
	m.stats.Classifications = make(map[sstate.Kind]int)
	go m.run()
	return m, nil
}

// Process exposes the underlying process.
func (m *Manager) Process() *core.Process { return m.p }

// Mode returns the current Figure-1 mode.
func (m *Manager) Mode() modes.Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.machine == nil {
		return modes.Settling
	}
	return m.machine.Mode()
}

// Holder returns the current holder as known locally (zero PID if free).
func (m *Manager) Holder() ids.PID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.holder
}

// HeldByMe reports whether this process holds the lock *and* is still in
// a view where the lock is protected (N-mode).
func (m *Manager) HeldByMe() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.machine != nil && m.machine.Mode() == modes.Normal && m.holder == m.p.PID()
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	out := m.stats
	out.Classifications = make(map[sstate.Kind]int, len(m.stats.Classifications))
	for k, v := range m.stats.Classifications {
		out.Classifications[k] = v
	}
	return out
}

// TryAcquire asks the manager for the lock. It returns nil on grant,
// ErrBusy if held elsewhere, ErrNotAvailable outside N-mode, ErrTimeout
// if a view change interrupted the exchange.
func (m *Manager) TryAcquire() error { return m.roundTrip("acq") }

// Release gives the lock back. Only the holder may release.
func (m *Manager) Release() error {
	m.mu.Lock()
	if m.holder != m.p.PID() {
		m.mu.Unlock()
		return ErrNotHolder
	}
	m.mu.Unlock()
	return m.roundTrip("rel")
}

func (m *Manager) roundTrip(typ string) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	if m.machine == nil || m.machine.Mode() != modes.Normal {
		m.mu.Unlock()
		return ErrNotAvailable
	}
	m.nextOp++
	op := fmt.Sprintf("%v/%d", m.p.PID(), m.nextOp)
	ch := make(chan error, 1)
	m.waiters[op] = ch
	m.mu.Unlock()

	defer func() {
		m.mu.Lock()
		delete(m.waiters, op)
		m.mu.Unlock()
	}()

	mgr, ok := m.p.CurrentView().Comp().Min()
	if !ok {
		return ErrNotAvailable
	}
	if err := m.p.Unicast(mgr, encodeMsg(lockMsg{Type: typ, Op: op, From: m.p.PID()})); err != nil {
		return fmt.Errorf("lockmgr: request: %w", err)
	}
	select {
	case err := <-ch:
		return err
	case <-time.After(m.cfg.OpTimeout):
		return ErrTimeout
	case <-m.done:
		return ErrClosed
	}
}

// Close leaves the group.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.p.Leave()
	<-m.done
}
