package lockmgr

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/modes"
	"repro/internal/quorum"
	"repro/internal/vstest"
)

func rwFor(n int) quorum.RW {
	sites := make([]string, n)
	for i := range sites {
		sites[i] = vstest.SiteName(i)
	}
	return quorum.MajorityRW(quorum.Uniform(sites...))
}

func clusterLock(t *testing.T, seed int64, n int, enriched bool) (*vstest.Net, []*Manager) {
	t.Helper()
	net := vstest.NewNet(t, seed)
	rw := rwFor(n)
	ms := make([]*Manager, 0, n)
	for i := 0; i < n; i++ {
		m, err := Open(net.Fabric, net.Reg, vstest.SiteName(i), vstest.FastOptions(), Config{RW: rw, Enriched: enriched})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		t.Cleanup(m.Close)
		ms = append(ms, m)
	}
	waitNormalLock(t, ms, 10*time.Second)
	return net, ms
}

func waitNormalLock(t *testing.T, ms []*Manager, timeout time.Duration) {
	t.Helper()
	for _, m := range ms {
		m := m
		vstest.Eventually(t, timeout, fmt.Sprintf("%v in N-mode", m.Process().PID()), func() bool {
			return m.Mode() == modes.Normal
		})
	}
}

func acquireRetry(t *testing.T, m *Manager, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		err := m.TryAcquire()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("acquire never succeeded: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAcquireReleaseBasic(t *testing.T) {
	_, ms := clusterLock(t, 300, 3, true)
	acquireRetry(t, ms[1], 5*time.Second)
	if !ms[1].HeldByMe() {
		t.Fatal("HeldByMe false after grant")
	}
	vstest.Eventually(t, 3*time.Second, "holder visible everywhere", func() bool {
		for _, m := range ms {
			if m.Holder() != ms[1].Process().PID() {
				return false
			}
		}
		return true
	})
	// Someone else cannot take it. (Retry through transient view-change
	// timeouts; the answer must settle on ErrBusy, never success.)
	expectStable(t, "second acquire", ErrBusy, func() error { return ms[2].TryAcquire() })
	if err := ms[2].Release(); err != ErrNotHolder {
		t.Fatalf("non-holder release: %v, want ErrNotHolder", err)
	}
	expectStable(t, "holder release", nil, func() error { return ms[1].Release() })
	vstest.Eventually(t, 3*time.Second, "free everywhere", func() bool {
		for _, m := range ms {
			if !m.Holder().IsZero() {
				return false
			}
		}
		return true
	})
}

// expectStable retries op through transient view-change errors until it
// yields the wanted terminal answer.
func expectStable(t *testing.T, what string, want error, op func() error) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := op()
		if err == want {
			return
		}
		transient := err == ErrTimeout || err == ErrNotAvailable || errors.Is(err, core.ErrBlocked)
		if !transient {
			t.Fatalf("%s: %v, want %v", what, err, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: still %v after retries, want %v", what, err, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMutualExclusionStress(t *testing.T) {
	_, ms := clusterLock(t, 301, 3, true)
	var inCritical int32
	var violations int32
	var wg sync.WaitGroup
	for _, m := range ms {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				// spin until acquired
				for {
					if err := m.TryAcquire(); err == nil {
						break
					}
					time.Sleep(2 * time.Millisecond)
				}
				if atomic.AddInt32(&inCritical, 1) != 1 {
					atomic.AddInt32(&violations, 1)
				}
				time.Sleep(time.Millisecond)
				atomic.AddInt32(&inCritical, -1)
				for {
					if err := m.Release(); err == nil {
						break
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	if v := atomic.LoadInt32(&violations); v != 0 {
		t.Fatalf("%d mutual exclusion violations", v)
	}
}

func TestMinorityCannotAcquire(t *testing.T) {
	net, ms := clusterLock(t, 302, 5, true)
	net.Fabric.SetPartitions([]string{"a", "b", "c"}, []string{"d", "e"})
	vstest.Eventually(t, 10*time.Second, "minority in R", func() bool {
		return ms[4].Mode() == modes.Reduced
	})
	if err := ms[4].TryAcquire(); err != ErrNotAvailable {
		t.Fatalf("minority acquire: %v, want ErrNotAvailable", err)
	}
	// Majority still works.
	waitNormalLock(t, ms[:3], 10*time.Second)
	acquireRetry(t, ms[0], 5*time.Second)
	if err := ms[0].Release(); err != nil {
		t.Fatal(err)
	}
}

func TestHolderIsolatedInMinorityLosesLock(t *testing.T) {
	net, ms := clusterLock(t, 303, 5, true)
	// e acquires, then gets partitioned away with d.
	acquireRetry(t, ms[4], 5*time.Second)
	net.Fabric.SetPartitions([]string{"a", "b", "c"}, []string{"d", "e"})

	// The isolated holder observes R-mode: its lock is not protected.
	vstest.Eventually(t, 10*time.Second, "holder sees R", func() bool {
		return ms[4].Mode() == modes.Reduced
	})
	if ms[4].HeldByMe() {
		t.Fatal("HeldByMe true in R-mode")
	}
	// The majority settles, frees the stale lock, and can grant again.
	waitNormalLock(t, ms[:3], 15*time.Second)
	acquireRetry(t, ms[0], 10*time.Second)
	frees := 0
	for _, m := range ms[:3] {
		frees += int(m.Stats().StaleFrees)
	}
	if frees == 0 {
		t.Error("no stale-free recorded after isolating the holder")
	}

	// After the heal, everyone agrees on the majority's holder.
	net.Fabric.Heal()
	waitNormalLock(t, ms, 15*time.Second)
	want := ms[0].Process().PID()
	vstest.Eventually(t, 5*time.Second, "post-heal holder agreement", func() bool {
		for _, m := range ms {
			if m.Holder() != want {
				return false
			}
		}
		return true
	})
}

func TestLockSurvivesManagerCrash(t *testing.T) {
	_, ms := clusterLock(t, 304, 5, true)
	acquireRetry(t, ms[3], 5*time.Second)
	// Crash the manager (smallest member, site a).
	ms[0].Process().Crash()
	waitNormalLock(t, ms[1:], 15*time.Second)
	// The holder survives the manager change.
	vstest.Eventually(t, 5*time.Second, "holder preserved", func() bool {
		for _, m := range ms[1:] {
			if m.Holder() != ms[3].Process().PID() {
				return false
			}
		}
		return true
	})
	expectStable(t, "release after manager crash", nil, func() error { return ms[3].Release() })
}

func TestFlatModeLockAlsoWorks(t *testing.T) {
	_, ms := clusterLock(t, 305, 3, false)
	acquireRetry(t, ms[2], 5*time.Second)
	expectStable(t, "contended acquire", ErrBusy, func() error { return ms[1].TryAcquire() })
	expectStable(t, "holder release", nil, func() error { return ms[2].Release() })
}

func TestClosedErrors(t *testing.T) {
	net := vstest.NewNet(t, 306)
	m, err := Open(net.Fabric, net.Reg, "a", vstest.FastOptions(), Config{RW: rwFor(3), Enriched: true})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if err := m.TryAcquire(); err != ErrClosed && err != ErrNotAvailable {
		t.Fatalf("TryAcquire after close: %v", err)
	}
	m.Close() // idempotent
}
