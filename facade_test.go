package viewsync

import (
	"testing"
	"time"
)

// TestFacadeEndToEnd exercises the library exclusively through the
// public facade: boot a group, multicast, merge subviews, classify, and
// verify the trace — the complete quickstart surface.
func TestFacadeEndToEnd(t *testing.T) {
	rec := NewRecorder()
	fabric := NewFabric(FabricConfig{
		Delay: NewUniformDelay(50*time.Microsecond, 400*time.Microsecond, 1),
		Seed:  1,
	})
	defer fabric.Close()
	reg := NewRegistry()

	opts := Options{
		Group:          "facade",
		HeartbeatEvery: SimHeartbeatEvery,
		SuspectAfter:   SimSuspectAfter,
		Tick:           SimTick,
		ProposeTimeout: SimProposeTimeout,
		Enriched:       true,
		LogViews:       true,
		Observer:       rec,
	}

	var procs []*Process
	delivered := make(chan MsgEvent, 64)
	for _, site := range []string{"x", "y", "z"} {
		p, err := Start(fabric, reg, site, opts)
		if err != nil {
			t.Fatalf("Start(%s): %v", site, err)
		}
		procs = append(procs, p)
		go func(p *Process) {
			for ev := range p.Events() {
				if m, ok := ev.(MsgEvent); ok {
					delivered <- m
				}
			}
		}(p)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		v := procs[0].CurrentView()
		if v.Size() == 3 {
			ok := true
			for _, p := range procs[1:] {
				if p.CurrentView().ID != v.ID {
					ok = false
				}
			}
			if ok {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("convergence timeout")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := procs[0].Multicast([]byte("hello")); err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	got := 0
	timeout := time.After(5 * time.Second)
	for got < 3 {
		select {
		case m := <-delivered:
			if string(m.Payload) == "hello" {
				got++
			}
		case <-timeout:
			t.Fatalf("only %d deliveries", got)
		}
	}

	// Structure manipulation + local classification through the facade.
	v := procs[0].CurrentView()
	if n := v.Structure.NumSubviews(); n != 3 {
		t.Fatalf("expected 3 singleton subviews, got %d", n)
	}
	class := ClassifyEnriched(v, func(cluster PIDSet) bool { return len(cluster) >= 2 })
	if class.Kind != ProblemCreation {
		t.Fatalf("classification = %v, want creation (all singletons)", class.Kind)
	}
	if err := procs[0].SVSetMerge(v.Structure.SVSets()...); err != nil {
		t.Fatalf("SVSetMerge: %v", err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for procs[0].CurrentView().Structure.NumSVSets() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("sv-set merge never applied")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Quorum helpers.
	rw := MajorityRW(UniformVoting("x", "y", "z"))
	if !rw.CanWrite(v.Comp()) {
		t.Fatal("full view must hold a write quorum")
	}

	// Last-to-fail over the persisted logs.
	logs := make(map[string][]ViewRecord)
	for _, site := range []string{"x", "y", "z"} {
		logs[site] = reg.Open(site).ViewLog()
	}
	res := DetermineLastToFail(logs)
	if len(res.LastViews) == 0 {
		t.Fatal("no dead-end views found")
	}

	for _, p := range procs {
		p.Leave()
	}
	time.Sleep(50 * time.Millisecond)
	if errs := rec.Verify(); len(errs) != 0 {
		for _, err := range errs {
			t.Error(err)
		}
	}
}

// TestFacadeModeMachine drives the Figure-1 machine through the facade.
func TestFacadeModeMachine(t *testing.T) {
	fabric := NewFabric(FabricConfig{Seed: 2})
	defer fabric.Close()
	reg := NewRegistry()
	p, err := Start(fabric, reg, "solo", Options{Group: "m", Enriched: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Leave()
	go func() {
		for range p.Events() {
		}
	}()

	first := p.CurrentView()
	machine := NewModeMachine(AlwaysSettle(), first)
	if machine.Mode() != Settling {
		t.Fatalf("initial mode = %v", machine.Mode())
	}
	if _, err := machine.Reconcile(); err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	if machine.Mode() != Normal {
		t.Fatalf("mode after reconcile = %v", machine.Mode())
	}
}
